// SpMV deep-dive: sweep every scheduler over the CSR sparse
// matrix-vector workload and print the latency/bandwidth trade-off space of
// Fig 7 — from FCFS (low interference, terrible bandwidth) through the
// bandwidth-optimized GMC to the warp-aware schedulers that recover low
// divergence without giving the bandwidth back.
//
//	go run ./examples/spmv
package main

import (
	"fmt"
	"log"

	"dramlat"
)

func main() {
	fmt.Println("spmv: scheduler design space (Fig 7)")
	fmt.Printf("%-8s %10s %10s %12s %14s %10s\n",
		"sched", "ticks", "speedup", "bandwidth", "divergence", "row hits")

	run := func(sched string) dramlat.Results {
		spec := dramlat.RunSpec{Benchmark: "spmv", Scheduler: sched, Scale: 0.3}
		if sched == "sbwas" {
			spec.SBWASAlpha = 0.5
		}
		res, err := dramlat.Run(spec)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	baseTicks := run("gmc").Ticks
	for _, sched := range dramlat.Schedulers() {
		res := run(sched)
		speed := fmt.Sprintf("%.3f", float64(baseTicks)/float64(res.Ticks))
		fmt.Printf("%-8s %10d %10s %11.1f%% %13.0f %9.1f%%\n",
			sched, res.Ticks, speed,
			res.Utilization*100, res.Summary.DivergenceGap, res.RowHitRate*100)
	}
	fmt.Println()
	fmt.Println("(speedups are relative to the GMC baseline; schedulers listed in")
	fmt.Println(" evaluation order, so gmc's own row reads 1.000)")
}
