// Graph traversal example: reproduce the paper's motivation data (Figs 2-3)
// on the graph workloads — coalescing efficiency, memory controllers
// touched per warp, and the first-to-last latency spread that makes SIMT
// loads stall.
//
//	go run ./examples/graphbfs
package main

import (
	"fmt"
	"log"

	"dramlat"
)

func main() {
	graphApps := []string{"bfs", "sssp", "sp", "bh"}

	fmt.Println("Memory-access irregularity of the graph workloads (GMC baseline)")
	fmt.Printf("%-8s %16s %12s %10s %12s\n",
		"bench", ">1-req loads", "reqs/load", "MCs/warp", "last/first")
	for _, b := range graphApps {
		res, err := dramlat.Run(dramlat.RunSpec{
			Benchmark: b, Scheduler: "gmc",
			Scale: 0.25,
		})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		fmt.Printf("%-8s %15.0f%% %12.2f %10.2f %11.2fx\n",
			b, s.MultiReqFrac*100, s.ReqsPerLoad, s.AvgMCsTouched, s.LastOverFirst)
	}
	fmt.Println()
	fmt.Println("The paper's irregular suite averages 56% multi-request loads,")
	fmt.Println("5.9 requests per load, 2.5 controllers per warp and a 1.6x")
	fmt.Println("last-to-first latency ratio (Figs 2-3). A single delinquent")
	fmt.Println("request stalls the whole warp - the latency divergence the")
	fmt.Println("warp-aware schedulers attack.")

	// Show the attack working: bfs under every scheduler tier.
	fmt.Println()
	fmt.Println("bfs divergence gap (ticks between a warp's first and last DRAM data):")
	for _, sched := range append([]string{"gmc"}, dramlat.WarpAwareSchedulers()...) {
		res, err := dramlat.Run(dramlat.RunSpec{
			Benchmark: "bfs", Scheduler: sched,
			Scale: 0.25,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %6.0f\n", sched, res.Summary.DivergenceGap)
	}
}
