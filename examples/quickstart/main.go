// Quickstart: run one irregular benchmark under the baseline GMC scheduler
// and under the paper's full warp-aware policy (WG-W), and print the
// speedup and the latency-divergence numbers behind it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dramlat"
)

func main() {
	// The full Table II machine (30 SMs x 32 warps) with reduced
	// per-warp work keeps the example under a few seconds while
	// preserving the memory-system contention that causes divergence.
	base := dramlat.RunSpec{
		Benchmark: "spmv",
		Scale:     0.3,
	}

	fmt.Println("running spmv under the throughput-optimized GMC baseline...")
	gmcSpec := base
	gmcSpec.Scheduler = "gmc"
	gmc, err := dramlat.Run(gmcSpec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running spmv under warp-aware scheduling (WG-W)...")
	wgSpec := base
	wgSpec.Scheduler = "wg-w"
	wgw, err := dramlat.Run(wgSpec)
	if err != nil {
		log.Fatal(err)
	}

	speedup := float64(gmc.Ticks) / float64(wgw.Ticks)
	fmt.Println()
	fmt.Printf("%-28s %12s %12s\n", "", "gmc", "wg-w")
	fmt.Printf("%-28s %12d %12d\n", "kernel ticks", gmc.Ticks, wgw.Ticks)
	fmt.Printf("%-28s %12.3f %12.3f\n", "IPC", gmc.IPC, wgw.IPC)
	fmt.Printf("%-28s %11.0f%% %11.0f%%\n", "DRAM bandwidth utilization",
		gmc.Utilization*100, wgw.Utilization*100)
	fmt.Printf("%-28s %12.0f %12.0f\n", "effective mem latency (ticks)",
		gmc.Summary.EffectiveLatency, wgw.Summary.EffectiveLatency)
	fmt.Printf("%-28s %12.0f %12.0f\n", "divergence gap (ticks)",
		gmc.Summary.DivergenceGap, wgw.Summary.DivergenceGap)
	fmt.Println()
	fmt.Printf("warp-aware speedup over GMC: %.2fx\n", speedup)
	fmt.Println("(the paper reports a 10.1% mean gain across its irregular suite)")
}
