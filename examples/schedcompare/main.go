// Scheduler comparison across a mixed suite, including the Fig 4 ideal
// models: for each workload, print GMC vs the full warp-aware stack vs the
// zero-latency-divergence upper bound, showing how much of the ideal
// headroom warp-aware scheduling captures.
//
// The runs go through the internal/sweep engine: the whole grid executes
// on a worker pool up front, and failures surface as a summary instead of
// killing the comparison.
//
//	go run ./examples/schedcompare
package main

import (
	"fmt"
	"log"

	"dramlat"
	"dramlat/internal/sweep"
)

func main() {
	suite := []string{"sp", "bh", "PVC", "spmv", "sad"}

	// One grid covers every cell of the table: 4 variants per bench.
	spec := func(b, sched string, perfect, zd bool) dramlat.RunSpec {
		return dramlat.RunSpec{
			Benchmark: b, Scheduler: sched,
			Scale:             0.25,
			PerfectCoalescing: perfect, ZeroDivergence: zd,
		}
	}
	var specs []dramlat.RunSpec
	for _, b := range suite {
		specs = append(specs,
			spec(b, "gmc", false, false),
			spec(b, "wg-w", false, false),
			spec(b, "gmc", false, true),
			spec(b, "gmc", true, false))
	}

	eng := &sweep.Engine{} // GOMAXPROCS workers, no persistent cache
	rep := eng.Run(specs)
	if err := rep.Err(); err != nil {
		log.Fatal(err)
	}
	ticks := map[string]int64{}
	for _, o := range rep.Outcomes {
		ticks[o.Hash] = o.Results.Ticks
	}
	at := func(b, sched string, perfect, zd bool) int64 {
		return ticks[spec(b, sched, perfect, zd).Hash()]
	}

	fmt.Println("How much of the zero-divergence headroom does WG-W capture?")
	fmt.Printf("%-14s %10s %10s %12s %10s\n",
		"bench", "wg-w", "zero-div", "captured", "perfect")
	for _, b := range suite {
		base := at(b, "gmc", false, false)
		wgw := float64(base) / float64(at(b, "wg-w", false, false))
		zd := float64(base) / float64(at(b, "gmc", false, true))
		pc := float64(base) / float64(at(b, "gmc", true, false))
		captured := 0.0
		if zd > 1 {
			captured = (wgw - 1) / (zd - 1)
		}
		fmt.Printf("%-14s %9.3fx %9.3fx %11.0f%% %9.3fx\n", b, wgw, zd, captured*100, pc)
	}
	fmt.Println()
	fmt.Println("zero-div: all of a warp's data returned with its first request")
	fmt.Println("(Fig 4's upper bound, +43% in the paper); perfect: one request")
	fmt.Println("per load (+5x in the paper, unrealizable).")
}
