// Scheduler comparison across a mixed suite, including the Fig 4 ideal
// models: for each workload, print GMC vs the full warp-aware stack vs the
// zero-latency-divergence upper bound, showing how much of the ideal
// headroom warp-aware scheduling captures.
//
//	go run ./examples/schedcompare
package main

import (
	"fmt"
	"log"

	"dramlat"
)

func main() {
	suite := []string{"sp", "bh", "PVC", "spmv", "sad"}

	fmt.Println("How much of the zero-divergence headroom does WG-W capture?")
	fmt.Printf("%-14s %10s %10s %12s %10s\n",
		"bench", "wg-w", "zero-div", "captured", "perfect")
	for _, b := range suite {
		run := func(sched string, perfect, zd bool) int64 {
			res, err := dramlat.Run(dramlat.RunSpec{
				Benchmark: b, Scheduler: sched,
				Scale:             0.25,
				PerfectCoalescing: perfect, ZeroDivergence: zd,
			})
			if err != nil {
				log.Fatal(err)
			}
			return res.Ticks
		}
		base := run("gmc", false, false)
		wgw := float64(base) / float64(run("wg-w", false, false))
		zd := float64(base) / float64(run("gmc", false, true))
		pc := float64(base) / float64(run("gmc", true, false))
		captured := 0.0
		if zd > 1 {
			captured = (wgw - 1) / (zd - 1)
		}
		fmt.Printf("%-14s %9.3fx %9.3fx %11.0f%% %9.3fx\n", b, wgw, zd, captured*100, pc)
	}
	fmt.Println()
	fmt.Println("zero-div: all of a warp's data returned with its first request")
	fmt.Println("(Fig 4's upper bound, +43% in the paper); perfect: one request")
	fmt.Println("per load (+5x in the paper, unrealizable).")
}
