package dramlat

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each bench runs the same simulations the dlbench tool uses (at reduced
// scale so `go test -bench=.` stays tractable) and reports the headline
// metric of that experiment via b.ReportMetric. The full-size regeneration
// lives in cmd/dlbench; EXPERIMENTS.md records paper-vs-measured.

import (
	"math"
	"testing"
)

// benchScale keeps `go test -bench=.` to a few minutes: the full Table II
// machine with reduced per-warp work (contention, and therefore divergence,
// is preserved; see EXPERIMENTS.md for full-scale numbers).
const benchScale = 0.2

var resultCache = map[string]Results{}

func benchRun(b *testing.B, bench, sched string, perfect, zerodiv bool, alpha float64) Results {
	b.Helper()
	key := bench + "/" + sched
	if perfect {
		key += "/pc"
	}
	if zerodiv {
		key += "/zd"
	}
	if alpha != 0 {
		key += "/a"
	}
	if res, ok := resultCache[key]; ok {
		return res
	}
	res, err := Run(RunSpec{
		Benchmark: bench, Scheduler: sched, Scale: benchScale,
		PerfectCoalescing: perfect, ZeroDivergence: zerodiv, SBWASAlpha: alpha,
	})
	if err != nil {
		b.Fatal(err)
	}
	resultCache[key] = res
	return res
}

func geomean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// BenchmarkTable1MERB regenerates Table I (31 20 10 7 5 5...).
func BenchmarkTable1MERB(b *testing.B) {
	var tab []int
	for i := 0; i < b.N; i++ {
		tab = MERBTable(16)
	}
	if tab[0] != 31 || tab[1] != 20 || tab[2] != 10 || tab[3] != 7 || tab[4] != 5 {
		b.Fatalf("Table I mismatch: %v", tab)
	}
	b.ReportMetric(float64(tab[1]), "MERB(2banks)")
}

// BenchmarkFig2Coalescing measures coalescing efficiency on the irregular
// suite (paper: 56% multi-request loads, 5.9 requests/load).
func BenchmarkFig2Coalescing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var multi, rpl float64
		for _, w := range IrregularNames() {
			s := benchRun(b, w, "gmc", false, false, 0).Summary
			multi += s.MultiReqFrac
			rpl += s.ReqsPerLoad
		}
		n := float64(len(IrregularNames()))
		b.ReportMetric(multi/n*100, "multi-req-%")
		b.ReportMetric(rpl/n, "reqs/load")
	}
}

// BenchmarkFig3Divergence measures the last/first latency ratio and MCs
// touched (paper: 1.6x, 2.5).
func BenchmarkFig3Divergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var lf, mc float64
		for _, w := range IrregularNames() {
			s := benchRun(b, w, "gmc", false, false, 0).Summary
			lf += s.LastOverFirst
			mc += s.AvgMCsTouched
		}
		n := float64(len(IrregularNames()))
		b.ReportMetric(lf/n, "last/first-x")
		b.ReportMetric(mc/n, "MCs/warp")
	}
}

// BenchmarkFig4Ideal measures the ideal-model speedups (paper: perfect
// coalescing ~5x, zero latency divergence ~1.43x).
func BenchmarkFig4Ideal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var pc, zd []float64
		for _, w := range IrregularNames() {
			base := float64(benchRun(b, w, "gmc", false, false, 0).Ticks)
			pc = append(pc, base/float64(benchRun(b, w, "gmc", true, false, 0).Ticks))
			zd = append(zd, base/float64(benchRun(b, w, "gmc", false, true, 0).Ticks))
		}
		b.ReportMetric(geomean(pc), "perfect-x")
		b.ReportMetric(geomean(zd), "zerodiv-x")
	}
}

// fig8Speedup computes the geomean speedup of a warp-aware policy over the
// GMC baseline across the irregular suite.
func fig8Speedup(b *testing.B, sched string) float64 {
	var sp []float64
	for _, w := range IrregularNames() {
		base := float64(benchRun(b, w, "gmc", false, false, 0).Ticks)
		sp = append(sp, base/float64(benchRun(b, w, sched, false, false, 0).Ticks))
	}
	return geomean(sp)
}

// BenchmarkFig8Speedup measures the headline result (paper: WG +3.4%,
// WG-M +6.2%, WG-Bw +8.4%, WG-W +10.1%).
func BenchmarkFig8Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(fig8Speedup(b, "wg"), "wg-x")
		b.ReportMetric(fig8Speedup(b, "wg-bw"), "wg-bw-x")
		b.ReportMetric(fig8Speedup(b, "wg-w"), "wg-w-x")
	}
}

// BenchmarkFig9EffLatency measures normalized effective memory latency
// (paper: WG 0.909, WG-M 0.831).
func BenchmarkFig9EffLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sched := range []string{"wg", "wg-m"} {
			var ratio []float64
			for _, w := range IrregularNames() {
				base := benchRun(b, w, "gmc", false, false, 0).Summary.EffectiveLatency
				v := benchRun(b, w, sched, false, false, 0).Summary.EffectiveLatency
				if base > 0 {
					ratio = append(ratio, v/base)
				}
			}
			b.ReportMetric(geomean(ratio), sched+"-efflat")
		}
	}
}

// BenchmarkFig10Divergence measures the first-to-last DRAM service gap
// reduction of WG-W over GMC.
func BenchmarkFig10Divergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var ratio []float64
		for _, w := range IrregularNames() {
			base := benchRun(b, w, "gmc", false, false, 0).Summary.DivergenceGap
			v := benchRun(b, w, "wg-w", false, false, 0).Summary.DivergenceGap
			if base > 0 {
				ratio = append(ratio, v/base)
			}
		}
		b.ReportMetric(geomean(ratio), "gap-vs-gmc")
	}
}

// BenchmarkFig11Bandwidth measures utilization recovered by WG-Bw over
// WG-M (paper: >14% relative).
func BenchmarkFig11Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var wgm, wgbw float64
		for _, w := range IrregularNames() {
			wgm += benchRun(b, w, "wg-m", false, false, 0).Utilization
			wgbw += benchRun(b, w, "wg-bw", false, false, 0).Utilization
		}
		b.ReportMetric(wgbw/wgm, "bw-recovery-x")
	}
}

// BenchmarkFig12Writes measures write intensity and the unit/orphan share
// of drain-stalled groups on the write-heavy apps.
func BenchmarkFig12Writes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var wf float64
		var stalled, unit int64
		for _, w := range []string{"nw", "SS", "sad"} {
			res := benchRun(b, w, "wg-w", false, false, 0)
			wf += res.WriteFrac
			stalled += res.DrainStalledGroups
			unit += res.DrainStalledUnitOrOrphan
		}
		b.ReportMetric(wf/3*100, "write-%")
		if stalled > 0 {
			b.ReportMetric(float64(unit)/float64(stalled)*100, "unit-orphan-%")
		}
	}
}

// BenchmarkRegularApps measures the Section VI-A result: no slowdown on
// structured workloads (paper: +1.8%, none slower).
func BenchmarkRegularApps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sp []float64
		worst := math.Inf(1)
		for _, w := range RegularNames() {
			base := float64(benchRun(b, w, "gmc", false, false, 0).Ticks)
			s := base / float64(benchRun(b, w, "wg-w", false, false, 0).Ticks)
			sp = append(sp, s)
			if s < worst {
				worst = s
			}
		}
		b.ReportMetric(geomean(sp), "speedup-x")
		b.ReportMetric(worst, "worst-x")
	}
}

// BenchmarkPower measures the Section VI-B sensitivity (paper: +1.8% GDDR5
// power for the row-hit-rate change).
func BenchmarkPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var delta []float64
		for _, w := range IrregularNames() {
			g := benchRun(b, w, "gmc", false, false, 0)
			ww := benchRun(b, w, "wg-w", false, false, 0)
			delta = append(delta, EstimatePower(ww).TotalMW/EstimatePower(g).TotalMW)
		}
		b.ReportMetric((geomean(delta)-1)*100, "power-delta-%")
	}
}

// BenchmarkSBWAS measures the Section VI-C1 comparator (paper: +2.51%).
func BenchmarkSBWAS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sp []float64
		for _, w := range IrregularNames() {
			base := float64(benchRun(b, w, "gmc", false, false, 0).Ticks)
			sp = append(sp, base/float64(benchRun(b, w, "sbwas", false, false, 0.5).Ticks))
		}
		b.ReportMetric(geomean(sp), "sbwas-x")
	}
}

// BenchmarkWAFCFS measures the Section VI-C2 comparator (paper: 0.888).
func BenchmarkWAFCFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sp []float64
		for _, w := range IrregularNames() {
			base := float64(benchRun(b, w, "gmc", false, false, 0).Ticks)
			sp = append(sp, base/float64(benchRun(b, w, "wafcfs", false, false, 0).Ticks))
		}
		b.ReportMetric(geomean(sp), "wafcfs-x")
	}
}

// benchEngine times one full simulation per iteration under the given
// engine and reports simulated-ticks/second. The dense/event pair is the
// speedup measurement behind DESIGN.md's "Simulation engine" section;
// scripts/bench3 sweeps the full scheduler x workload matrix into
// BENCH_3.json and scripts/bench5 does the serial-vs-parallel sweep into
// BENCH_5.json. Allocation counts are reported so -benchmem tracks the
// request-freelist and ring-buffer hot paths.
func benchEngine(b *testing.B, engine string) {
	b.ReportAllocs()
	var ticks int64
	for i := 0; i < b.N; i++ {
		res, err := Run(RunSpec{
			Benchmark: "bfs", Scheduler: "wg-w", Scale: 0.1, Engine: engine,
		})
		if err != nil {
			b.Fatal(err)
		}
		ticks += res.Ticks
	}
	b.ReportMetric(float64(ticks)/b.Elapsed().Seconds(), "sim-ticks/s")
}

// BenchmarkRunDense times the reference tick-every-cycle engine.
func BenchmarkRunDense(b *testing.B) { benchEngine(b, "dense") }

// BenchmarkRunEventDriven times the next-wakeup engine on the same run;
// the ratio to BenchmarkRunDense is the tick-skipping speedup.
func BenchmarkRunEventDriven(b *testing.B) { benchEngine(b, "event") }

// BenchmarkRunParallel times the epoch-parallel engine on the same run;
// the ratio to BenchmarkRunEventDriven is the sharding speedup at the
// paper's 30-SM machine. Full-occupancy scaling (120 SMs, GOMAXPROCS
// 1/2/4/8) lives in scripts/bench5.
func BenchmarkRunParallel(b *testing.B) { benchEngine(b, "parallel") }

// BenchmarkRunSampled times the interval-sampling engine at full scale
// (scale 0.1 kernels end inside the settle prefix, leaving nothing to
// sample); the ratio to an equally scaled exact run is the statistical
// fast-forward speedup. The full speedup-vs-error record lives in
// scripts/bench10.
func BenchmarkRunSampled(b *testing.B) {
	b.ReportAllocs()
	var ticks int64
	for i := 0; i < b.N; i++ {
		res, err := Run(RunSpec{
			Benchmark: "bfs", Scheduler: "wg-w", Engine: "sampled",
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Approximate || res.Sampling == nil || res.Sampling.Windows < 1 {
			b.Fatalf("sampled run measured no windows: %+v", res.Sampling)
		}
		ticks += res.Ticks
	}
	b.ReportMetric(float64(ticks)/b.Elapsed().Seconds(), "sim-ticks/s")
}

// BenchmarkSimulatorThroughput measures raw simulation speed (ticks/s) —
// an engineering metric, not a paper figure.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var ticks int64
	for i := 0; i < b.N; i++ {
		res, err := Run(RunSpec{Benchmark: "spmv", Scheduler: "gmc", Scale: 0.1, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		ticks += res.Ticks
	}
	b.ReportMetric(float64(ticks)/b.Elapsed().Seconds(), "sim-ticks/s")
}

// --- Ablation benches: the design choices DESIGN.md calls out ---

func ablationSpeedup(b *testing.B, ablation string) float64 {
	var sp []float64
	for _, w := range []string{"bfs", "kmeans", "spmv", "sssp"} {
		full := float64(benchRun(b, w, "wg-bw", false, false, 0).Ticks)
		res, err := Run(RunSpec{
			Benchmark: w, Scheduler: "wg-bw", Scale: benchScale, Ablation: ablation,
		})
		if err != nil {
			b.Fatal(err)
		}
		sp = append(sp, float64(res.Ticks)/full) // >1 means the ablation is slower
	}
	return geomean(sp)
}

// BenchmarkAblationCountScore replaces the bank-state-aware completion-time
// score with a raw request count (Section IV-B argues this is inadequate).
func BenchmarkAblationCountScore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(ablationSpeedup(b, "count-score"), "slowdown-x")
	}
}

// BenchmarkAblationNoOrphan disables the IV-D orphan-control rule.
func BenchmarkAblationNoOrphan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(ablationSpeedup(b, "no-orphan"), "slowdown-x")
	}
}

// BenchmarkAblationNoCredits drops the L2 group-complete credits, leaving
// only the age fallback to complete groups whose tagged request was
// filtered upstream.
func BenchmarkAblationNoCredits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(ablationSpeedup(b, "no-credits"), "slowdown-x")
	}
}
