package dramlat

import (
	"dramlat/internal/guard"
	"dramlat/internal/guard/chaos"
)

// The failure vocabulary of the façade, re-exported from internal/guard
// so callers can errors.As against public names:
//
//	res, err := dramlat.Run(spec)
//	var stall *dramlat.StallError
//	if errors.As(err, &stall) {
//		fmt.Println(stall.Dump) // per-SM / per-channel forensic snapshot
//	}
//	var crash *dramlat.RunError
//	if errors.As(err, &crash) {
//		log.Printf("reproduce with spec %s:\n%s", crash.SpecHash, crash.Stack)
//	}

// ValidationError aggregates every invalid RunSpec/Config field found
// in one validation pass.
type ValidationError = guard.ValidationError

// FieldError is one entry of a ValidationError.
type FieldError = guard.FieldError

// RunError is a panic recovered at the Run boundary: the spec hash to
// reproduce it, the phase and cycle it died at, and the stack.
type RunError = guard.RunError

// StallError reports a run aborted by the liveness watchdog (kinds
// "no-progress", "cycle-budget", "deadline", "stopped") together with a
// StallDump of what every component was waiting on.
type StallError = guard.StallError

// StallDump is the diagnostic snapshot attached to a StallError.
type StallDump = guard.StallDump

// InvariantViolation is the typed panic value of hot-path model
// invariant checks; it surfaces as the Panic field of a RunError.
type InvariantViolation = guard.InvariantViolation

// QuarantineError marks a poison spec the sweep fleet retired after
// repeated worker deaths: its job completes with this failure instead
// of retrying forever.
type QuarantineError = guard.QuarantineError

// AccuracyError reports a sampled run outside its configured error
// bounds against the exact event-engine reference (see CompareSampled):
// the offending metric, both values and the allowed deviation.
type AccuracyError = guard.AccuracyError

// Faults configures fault injection for chaos testing (RunSpec.Chaos).
type Faults = chaos.Faults

// Stall kinds found in StallError.Kind.
const (
	StallNoProgress  = guard.StallNoProgress
	StallCycleBudget = guard.StallCycleBudget
	StallDeadline    = guard.StallDeadline
	StallStopped     = guard.StallStopped
)
