// Package dramlat is the public façade of the warp-aware DRAM scheduling
// simulator: a reproduction of "Managing DRAM Latency Divergence in
// Irregular GPGPU Applications" (Chatterjee et al., SC 2014).
//
// The package wires together the cycle-level GPU model (internal/gpu), the
// benchmark generators (internal/workload) and the scheduler implementations
// (internal/memctrl for the baselines, internal/core for the paper's
// warp-aware WG / WG-M / WG-Bw / WG-W policies), and exposes one-call runs:
//
//	res, err := dramlat.Run(dramlat.RunSpec{Benchmark: "bfs", Scheduler: "wg-w"})
//	fmt.Println(res.IPC)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package dramlat

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"dramlat/internal/gddr5"
	"dramlat/internal/gpu"
	"dramlat/internal/power"
	"dramlat/internal/telemetry"
	"dramlat/internal/workload"
)

// RunSpec selects one simulation run.
type RunSpec struct {
	// Benchmark names a Table III workload (see Benchmarks).
	Benchmark string
	// Scheduler is one of Schedulers(): fcfs, wafcfs, frfcfs, gmc,
	// sbwas, wg, wg-m, wg-bw, wg-w.
	Scheduler string
	// Scale multiplies the per-warp work; 0 means 1.0 (full size).
	Scale float64
	// SMs/WarpsPerSM override the Table II machine when non-zero
	// (useful for quick runs and tests).
	SMs        int
	WarpsPerSM int
	// Seed defaults to 1.
	Seed int64

	// Ideal models of Fig 4.
	PerfectCoalescing bool
	ZeroDivergence    bool

	// SBWASAlpha sets the profiled bias for the sbwas comparator
	// (0 means 0.5; the paper profiles {0.25, 0.5, 0.75} per app).
	SBWASAlpha float64

	// Ablation disables one warp-aware design choice: "count-score",
	// "no-orphan" or "no-credits" (see gpu.Config.Ablation).
	Ablation string

	// WarpSched selects the SM warp scheduler: "" / "gto" or "lrr".
	WarpSched string

	// ReadQ / CmdQueueCap override the controller read-queue depth and
	// per-bank command-queue depth when non-zero (sensitivity sweeps:
	// the warp-aware gain grows with queue depth, since a deeper queue
	// gives the scheduler more reordering freedom).
	ReadQ       int
	CmdQueueCap int

	// Telemetry enables the event tracer / interval sampler for this run
	// (see internal/telemetry and RunTelemetry). Excluded from Canonical
	// and Hash: observability does not change simulation results, so
	// traced and untraced runs share a result-cache entry.
	Telemetry telemetry.Options `json:"-"`

	// DenseLoop forces the reference tick-every-cycle engine (see
	// gpu.Config.DenseLoop). Excluded from Canonical and Hash: both
	// engines produce byte-identical Results, so dense and event-driven
	// runs share a result-cache entry.
	DenseLoop bool `json:"-"`
}

// TelemetryOptions re-exports telemetry.Options for callers configuring
// RunSpec.Telemetry without importing the internal package path.
type TelemetryOptions = telemetry.Options

// Canonical returns the spec with every zero-valued "use the default"
// field replaced by the default it resolves to, so that two specs that
// select the same simulation compare (and hash) equal. The defaults are
// derived from gpu.DefaultConfig and workload.DefaultParams rather than
// restated here, so they cannot drift.
func (s RunSpec) Canonical() RunSpec {
	cfg := Config(s)
	s.Scheduler = cfg.Scheduler
	s.SMs = cfg.NumSMs
	s.WarpsPerSM = cfg.WarpsPerSM
	s.SBWASAlpha = cfg.SBWASAlpha
	s.ReadQ = cfg.ReadQ
	s.CmdQueueCap = cfg.CmdQueueCap
	if s.WarpSched == "" {
		s.WarpSched = "gto"
	}
	p := workload.DefaultParams()
	if s.Scale <= 0 {
		s.Scale = p.Scale
	}
	if s.Seed == 0 {
		s.Seed = p.Seed
	}
	// Observability and engine choice do not affect the simulation:
	// canonical specs are telemetry-free and engine-neutral so such runs
	// compare equal.
	s.Telemetry = telemetry.Options{}
	s.DenseLoop = false
	return s
}

// CanonicalJSON renders the canonicalized spec as deterministic JSON
// (struct field order is fixed, so the bytes are stable across runs).
func (s RunSpec) CanonicalJSON() ([]byte, error) {
	return json.Marshal(s.Canonical())
}

// Hash returns a hex content hash of the canonicalized spec, suitable as
// a result-cache key: specs that run the same simulation share a hash.
func (s RunSpec) Hash() string {
	b, err := s.CanonicalJSON()
	if err != nil {
		// RunSpec contains only scalar fields; Marshal cannot fail.
		panic(fmt.Sprintf("dramlat: canonical JSON: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Results is the run digest (re-exported from internal/gpu).
type Results = gpu.Results

// Schedulers lists the supported policies in evaluation order.
func Schedulers() []string { return gpu.Schedulers() }

// WarpAwareSchedulers lists the paper's four cumulative policies.
func WarpAwareSchedulers() []string { return []string{"wg", "wg-m", "wg-bw", "wg-w"} }

// BenchmarkInfo describes one workload.
type BenchmarkInfo struct {
	Name      string
	Suite     string
	Irregular bool
	Desc      string
}

// Benchmarks lists every available workload (Table III irregular suite
// plus the Section VI-A regular suite).
func Benchmarks() []BenchmarkInfo {
	var out []BenchmarkInfo
	for _, b := range workload.All() {
		out = append(out, BenchmarkInfo{b.Name, b.Suite, b.Irregular, b.Desc})
	}
	return out
}

// IrregularNames returns the Table III irregular benchmark names.
func IrregularNames() []string {
	var out []string
	for _, b := range workload.Irregular() {
		out = append(out, b.Name)
	}
	return out
}

// RegularNames returns the Section VI-A regular benchmark names.
func RegularNames() []string {
	var out []string
	for _, b := range workload.Regular() {
		out = append(out, b.Name)
	}
	return out
}

// Config builds the gpu.Config for a spec (exposed for tools that need to
// tweak further).
func Config(spec RunSpec) gpu.Config {
	cfg := gpu.DefaultConfig()
	if spec.SMs > 0 {
		cfg.NumSMs = spec.SMs
	}
	if spec.WarpsPerSM > 0 {
		cfg.WarpsPerSM = spec.WarpsPerSM
	}
	if spec.Scheduler != "" {
		cfg.Scheduler = spec.Scheduler
	}
	if spec.SBWASAlpha > 0 {
		cfg.SBWASAlpha = spec.SBWASAlpha
	}
	cfg.PerfectCoalescing = spec.PerfectCoalescing
	cfg.ZeroDivergence = spec.ZeroDivergence
	cfg.Ablation = spec.Ablation
	cfg.WarpSched = spec.WarpSched
	if spec.ReadQ > 0 {
		cfg.ReadQ = spec.ReadQ
	}
	if spec.CmdQueueCap > 0 {
		cfg.CmdQueueCap = spec.CmdQueueCap
	}
	cfg.Telemetry = spec.Telemetry
	cfg.DenseLoop = spec.DenseLoop
	return cfg
}

// Telemetry bundles a run's observability output (re-exported from
// internal/telemetry): Tracer holds the event ring, Sampler the interval
// snapshots.
type Telemetry = telemetry.Telemetry

// Run executes one simulation.
func Run(spec RunSpec) (Results, error) {
	res, _, err := RunTelemetry(spec)
	return res, err
}

// RunTelemetry executes one simulation and additionally returns its
// telemetry bundle — nil unless spec.Telemetry enables a subsystem. The
// bundle is returned even when the run errors out on MaxTicks, so a hung
// configuration can be diagnosed from its partial trace.
func RunTelemetry(spec RunSpec) (Results, *Telemetry, error) {
	b, err := workload.ByName(spec.Benchmark)
	if err != nil {
		return Results{}, nil, err
	}
	cfg := Config(spec)
	if err := cfg.Validate(); err != nil {
		return Results{}, nil, err
	}
	p := workload.DefaultParams()
	p.NumSMs = cfg.NumSMs
	p.WarpsPerSM = cfg.WarpsPerSM
	if spec.Scale > 0 {
		p.Scale = spec.Scale
	}
	if spec.Seed != 0 {
		p.Seed = spec.Seed
	}
	sys, err := gpu.NewSystem(cfg, b.Build(p))
	if err != nil {
		return Results{}, nil, err
	}
	res := sys.Run()
	if !res.Drained {
		return res, sys.Tel, fmt.Errorf("dramlat: %s/%s hit MaxTicks before completing", spec.Benchmark, spec.Scheduler)
	}
	return res, sys.Tel, nil
}

// MERBTable returns Table I for the default GDDR5 timings.
func MERBTable(maxBanks int) []int { return gddr5.Default().MERBTable(maxBanks) }

// Timing returns the Table II GDDR5 timing set.
func Timing() gddr5.Timing { return gddr5.Default() }

// PowerModel returns the GDDR5 power model used for the Section VI-B
// analysis.
func PowerModel() power.Model { return power.DefaultGDDR5() }

// EstimatePower evaluates the power model over a run's DRAM activity.
func EstimatePower(res Results) power.Breakdown {
	return PowerModel().Estimate(res.DRAM, res.Ticks, 6)
}
