// Package dramlat is the public façade of the warp-aware DRAM scheduling
// simulator: a reproduction of "Managing DRAM Latency Divergence in
// Irregular GPGPU Applications" (Chatterjee et al., SC 2014).
//
// The package wires together the cycle-level GPU model (internal/gpu), the
// benchmark generators (internal/workload) and the scheduler implementations
// (internal/memctrl for the baselines, internal/core for the paper's
// warp-aware WG / WG-M / WG-Bw / WG-W policies), and exposes one-call runs:
//
//	res, err := dramlat.Run(dramlat.RunSpec{Benchmark: "bfs", Scheduler: "wg-w"})
//	fmt.Println(res.IPC)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package dramlat

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"dramlat/internal/gddr5"
	"dramlat/internal/gpu"
	"dramlat/internal/guard"
	"dramlat/internal/power"
	"dramlat/internal/telemetry"
	"dramlat/internal/workload"
)

// RunSpec selects one simulation run.
type RunSpec struct {
	// Benchmark names a Table III workload (see Benchmarks).
	Benchmark string
	// Scheduler is one of Schedulers(): fcfs, wafcfs, frfcfs, gmc,
	// sbwas, wg, wg-m, wg-bw, wg-w.
	Scheduler string
	// Scale multiplies the per-warp work; 0 means 1.0 (full size).
	Scale float64
	// SMs/WarpsPerSM override the Table II machine when non-zero
	// (useful for quick runs and tests).
	SMs        int
	WarpsPerSM int
	// Seed defaults to 1.
	Seed int64

	// Ideal models of Fig 4.
	PerfectCoalescing bool
	ZeroDivergence    bool

	// SBWASAlpha sets the profiled bias for the sbwas comparator
	// (0 means 0.5; the paper profiles {0.25, 0.5, 0.75} per app).
	SBWASAlpha float64

	// Ablation disables one warp-aware design choice: "count-score",
	// "no-orphan" or "no-credits" (see gpu.Config.Ablation).
	Ablation string

	// WarpSched selects the SM warp scheduler: "" / "gto" or "lrr".
	WarpSched string

	// ReadQ / CmdQueueCap override the controller read-queue depth and
	// per-bank command-queue depth when non-zero (sensitivity sweeps:
	// the warp-aware gain grows with queue depth, since a deeper queue
	// gives the scheduler more reordering freedom).
	ReadQ       int
	CmdQueueCap int

	// Telemetry enables the event tracer / interval sampler for this run
	// (see internal/telemetry and RunTelemetry). Excluded from Canonical
	// and Hash: observability does not change simulation results, so
	// traced and untraced runs share a result-cache entry.
	Telemetry telemetry.Options `json:"-"`

	// DenseLoop forces the reference tick-every-cycle engine (see
	// gpu.Config.DenseLoop). Excluded from Canonical and Hash: both
	// engines produce byte-identical Results, so dense and event-driven
	// runs share a result-cache entry.
	DenseLoop bool `json:"-"`

	// Engine selects the simulation engine explicitly: "" / "event"
	// (default), "dense", or "parallel" (the epoch-parallel engine, which
	// shards SMs and memory partitions across cores). Every engine
	// produces byte-identical Results, so the field is hash-excluded like
	// DenseLoop and all engines share a result-cache entry.
	Engine string `json:"-"`

	// Shards bounds the parallel engine's worker count; 0 picks
	// min(GOMAXPROCS, SMs). Results never depend on it; hash-excluded.
	Shards int `json:"-"`

	// Sampled configures the interval-sampling engine (Engine
	// "sampled"): a non-zero block selects sampled execution even when
	// Engine is empty. Unlike Engine/Shards these knobs are
	// hash-INCLUDED: the sampled engine's Results are approximate and
	// depend on the window parameters, so a sampled run must never
	// share a result-cache entry with an exact run (or with a sampled
	// run at different parameters). The zero block (exact engines)
	// marshals to nothing, keeping exact specs' hashes unchanged.
	Sampled SampledOptions `json:",omitzero"`

	// MaxCycles caps the simulated cycles when non-zero (default
	// gpu.DefaultConfig().MaxTicks). A run still live at the cap returns
	// partial Results with a *StallError (kind "cycle-budget"). Excluded
	// from Canonical and Hash: a completed run's Results are identical
	// under any sufficient cap, and capped runs error rather than cache.
	MaxCycles int64 `json:"-"`

	// StallCycles is the liveness watchdog's no-progress budget in sim
	// cycles: if nothing retires and no warp issues for this long the run
	// aborts with a *StallError (kind "no-progress") instead of spinning
	// to MaxCycles. 0 means gpu.DefaultStallCycles; negative disables the
	// progress check. Hash-excluded like MaxCycles.
	StallCycles int64 `json:"-"`

	// Deadline aborts the run with a *StallError (kind "deadline") once
	// the wall clock passes it. Zero means no deadline. Hash-excluded.
	Deadline time.Time `json:"-"`

	// Stop cancels the run externally: close the channel (or wire it to a
	// context's Done) and the engines return partial Results with a
	// *StallError (kind "stopped") at the next watchdog check.
	// Hash-excluded.
	Stop <-chan struct{} `json:"-"`

	// Chaos injects faults — components that stop answering, forced
	// panics — for robustness testing (see internal/guard/chaos). Faulted
	// runs exist to exercise the watchdog and recovery paths; they error
	// out and are never cached, so the field is hash-excluded.
	Chaos *Faults `json:"-"`
}

// TelemetryOptions re-exports telemetry.Options for callers configuring
// RunSpec.Telemetry without importing the internal package path.
type TelemetryOptions = telemetry.Options

// SampledOptions parameterizes the interval-sampling engine: runs
// alternate WindowCycles of full-fidelity measurement with
// FastForwardCycles advanced by statistical models calibrated from the
// window, after a WarmupCycles detailed prefix re-converges
// cache/queue state. Zero cycle counts select gpu.Default*Cycles.
// Seed perturbs the per-window RNG streams; together with the spec
// hash it makes sampled runs byte-identical across workers and runs.
type SampledOptions struct {
	WindowCycles      int64
	FastForwardCycles int64
	WarmupCycles      int64
	Seed              int64
}

// Enabled reports whether any sampling knob is set — a non-zero block
// selects the sampled engine even when RunSpec.Engine is empty.
func (o SampledOptions) Enabled() bool { return o != SampledOptions{} }

// DefaultSampled returns the sampled engine's default window parameters
// (the values a zero knob resolves to). Clients that need the Sampled
// block to travel over the wire — the Engine string itself is
// JSON-suppressed — materialize it with this instead of restating the
// defaults.
func DefaultSampled() SampledOptions {
	p := gpu.SampledConfig{}.WithDefaults()
	return SampledOptions{
		WindowCycles:      p.WindowCycles,
		FastForwardCycles: p.FastForwardCycles,
		WarmupCycles:      p.WarmupCycles,
	}
}

// IsSampled reports whether the spec selects the interval-sampling
// engine — via Engine "sampled" or a non-zero Sampled block — and will
// therefore produce approximate Results (Approximate=true). Sweep
// tooling uses it to refuse telemetry capture for sampled runs.
func (s RunSpec) IsSampled() bool {
	return s.Engine == gpu.EngineSampled || s.Sampled.Enabled()
}

// Canonical returns the spec with every zero-valued "use the default"
// field replaced by the default it resolves to, so that two specs that
// select the same simulation compare (and hash) equal. The defaults are
// derived from gpu.DefaultConfig and workload.DefaultParams rather than
// restated here, so they cannot drift.
func (s RunSpec) Canonical() RunSpec {
	cfg := Config(s)
	s.Scheduler = cfg.Scheduler
	s.SMs = cfg.NumSMs
	s.WarpsPerSM = cfg.WarpsPerSM
	s.SBWASAlpha = cfg.SBWASAlpha
	s.ReadQ = cfg.ReadQ
	s.CmdQueueCap = cfg.CmdQueueCap
	if s.WarpSched == "" {
		s.WarpSched = "gto"
	}
	p := workload.DefaultParams()
	if s.Scale <= 0 {
		s.Scale = p.Scale
	}
	if s.Seed == 0 {
		s.Seed = p.Seed
	}
	// A sampled run's results DO depend on the window parameters, so
	// the Sampled block is materialized (defaults filled) while the
	// Engine string itself stays hash-excluded below: Engine="sampled"
	// and an explicit default Sampled block canonicalize — and cache —
	// identically, and can never collide with an exact run, whose
	// Sampled block stays zero and marshals to nothing.
	if s.Engine == gpu.EngineSampled || s.Sampled.Enabled() {
		p := gpu.SampledConfig{
			WindowCycles:      s.Sampled.WindowCycles,
			FastForwardCycles: s.Sampled.FastForwardCycles,
			WarmupCycles:      s.Sampled.WarmupCycles,
		}.WithDefaults()
		s.Sampled.WindowCycles = p.WindowCycles
		s.Sampled.FastForwardCycles = p.FastForwardCycles
		s.Sampled.WarmupCycles = p.WarmupCycles
	}
	// Observability, engine choice and run-budget/cancellation knobs do
	// not affect the simulation a completed run performs: canonical specs
	// zero them all so such runs compare (and cache) equal.
	s.Telemetry = telemetry.Options{}
	s.DenseLoop = false
	s.Engine = ""
	s.Shards = 0
	s.MaxCycles = 0
	s.StallCycles = 0
	s.Deadline = time.Time{}
	s.Stop = nil
	s.Chaos = nil
	return s
}

// Validate checks the spec without running it, aggregating every
// problem into a single *ValidationError (one field per finding) so a
// bad spec is fixed in one round trip. Run performs the same checks.
func (s RunSpec) Validate() error {
	v := &guard.ValidationError{}
	if _, err := workload.ByName(s.Benchmark); err != nil {
		v.Addf("Benchmark", s.Benchmark, "%v", err)
	}
	if s.Scale < 0 || math.IsNaN(s.Scale) || math.IsInf(s.Scale, 0) {
		v.Addf("Scale", s.Scale, "must be a finite value >= 0 (0 selects the default)")
	}
	if s.SMs < 0 {
		v.Addf("SMs", s.SMs, "must be >= 0 (0 selects the default)")
	}
	if s.WarpsPerSM < 0 {
		v.Addf("WarpsPerSM", s.WarpsPerSM, "must be >= 0 (0 selects the default)")
	}
	if !(s.SBWASAlpha >= 0 && s.SBWASAlpha <= 1) { // rejects NaN too
		v.Addf("SBWASAlpha", s.SBWASAlpha, "must be in [0, 1]")
	}
	if s.ReadQ < 0 {
		v.Addf("ReadQ", s.ReadQ, "must be >= 0 (0 selects the default)")
	}
	if s.CmdQueueCap < 0 {
		v.Addf("CmdQueueCap", s.CmdQueueCap, "must be >= 0 (0 selects the default)")
	}
	if s.MaxCycles < 0 {
		v.Addf("MaxCycles", s.MaxCycles, "must be >= 0 (0 selects the default)")
	}
	if s.Sampled.Enabled() {
		switch s.Engine {
		case "", gpu.EngineSampled:
		default:
			v.Addf("Sampled", s.Sampled, "sampling parameters require Engine \"sampled\" (or empty), not %q", s.Engine)
		}
	}
	// The assembled config re-checks everything the spec maps onto
	// (scheduler name, warp scheduler, geometry, queue shapes).
	if err := Config(s).Validate(); err != nil {
		var ve *guard.ValidationError
		if errors.As(err, &ve) {
			v.Fields = append(v.Fields, ve.Fields...)
		} else {
			v.Addf("Config", nil, "%v", err)
		}
	}
	return v.Err()
}

// CanonicalJSON renders the canonicalized spec as deterministic JSON
// (struct field order is fixed, so the bytes are stable across runs).
func (s RunSpec) CanonicalJSON() ([]byte, error) {
	return json.Marshal(s.Canonical())
}

// Hash returns a hex content hash of the canonicalized spec, suitable as
// a result-cache key: specs that run the same simulation share a hash.
func (s RunSpec) Hash() string {
	b, err := s.CanonicalJSON()
	if err != nil {
		// RunSpec contains only scalar fields; Marshal cannot fail.
		panic(fmt.Sprintf("dramlat: canonical JSON: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Results is the run digest (re-exported from internal/gpu).
type Results = gpu.Results

// Schedulers lists the supported policies in evaluation order.
func Schedulers() []string { return gpu.Schedulers() }

// WarpAwareSchedulers lists the paper's four cumulative policies.
func WarpAwareSchedulers() []string { return []string{"wg", "wg-m", "wg-bw", "wg-w"} }

// BenchmarkInfo describes one workload.
type BenchmarkInfo struct {
	Name      string
	Suite     string
	Irregular bool
	Desc      string
}

// Benchmarks lists every available workload (Table III irregular suite
// plus the Section VI-A regular suite).
func Benchmarks() []BenchmarkInfo {
	var out []BenchmarkInfo
	for _, b := range workload.All() {
		out = append(out, BenchmarkInfo{b.Name, b.Suite, b.Irregular, b.Desc})
	}
	return out
}

// IrregularNames returns the Table III irregular benchmark names.
func IrregularNames() []string {
	var out []string
	for _, b := range workload.Irregular() {
		out = append(out, b.Name)
	}
	return out
}

// RegularNames returns the Section VI-A regular benchmark names.
func RegularNames() []string {
	var out []string
	for _, b := range workload.Regular() {
		out = append(out, b.Name)
	}
	return out
}

// Config builds the gpu.Config for a spec (exposed for tools that need to
// tweak further).
func Config(spec RunSpec) gpu.Config {
	cfg := gpu.DefaultConfig()
	if spec.SMs > 0 {
		cfg.NumSMs = spec.SMs
	}
	if spec.WarpsPerSM > 0 {
		cfg.WarpsPerSM = spec.WarpsPerSM
	}
	if spec.Scheduler != "" {
		cfg.Scheduler = spec.Scheduler
	}
	if spec.SBWASAlpha > 0 {
		cfg.SBWASAlpha = spec.SBWASAlpha
	}
	cfg.PerfectCoalescing = spec.PerfectCoalescing
	cfg.ZeroDivergence = spec.ZeroDivergence
	cfg.Ablation = spec.Ablation
	cfg.WarpSched = spec.WarpSched
	if spec.ReadQ > 0 {
		cfg.ReadQ = spec.ReadQ
	}
	if spec.CmdQueueCap > 0 {
		cfg.CmdQueueCap = spec.CmdQueueCap
	}
	cfg.Telemetry = spec.Telemetry
	cfg.DenseLoop = spec.DenseLoop
	cfg.Engine = spec.Engine
	cfg.Shards = spec.Shards
	if spec.Sampled.Enabled() && cfg.Engine == "" {
		cfg.Engine = gpu.EngineSampled
	}
	if cfg.Engine == gpu.EngineSampled {
		cfg.Sampled = gpu.SampledConfig{
			WindowCycles:      spec.Sampled.WindowCycles,
			FastForwardCycles: spec.Sampled.FastForwardCycles,
			WarmupCycles:      spec.Sampled.WarmupCycles,
			Seed:              spec.Sampled.Seed,
		}.WithDefaults()
		// Sampled.Key (the RNG stream key) is the spec's own content
		// hash; RunTelemetry fills it after validation — Config cannot,
		// because Canonical calls Config and Hash calls Canonical.
	}
	if spec.MaxCycles > 0 {
		cfg.MaxTicks = spec.MaxCycles
	}
	cfg.StallCycles = spec.StallCycles
	cfg.Deadline = spec.Deadline
	cfg.Stop = spec.Stop
	cfg.Faults = spec.Chaos
	return cfg
}

// Telemetry bundles a run's observability output (re-exported from
// internal/telemetry): Tracer holds the event ring, Sampler the interval
// snapshots.
type Telemetry = telemetry.Telemetry

// Run executes one simulation. It never panics: an invalid spec
// returns a *ValidationError, a hung, capped or cancelled run returns
// partial Results with a *StallError, and any residual panic inside
// the simulator is recovered into a *RunError carrying the spec hash,
// phase, cycle and stack. Inspect failures with errors.As.
func Run(spec RunSpec) (Results, error) {
	res, _, err := RunTelemetry(spec)
	return res, err
}

// RunTelemetry executes one simulation and additionally returns its
// telemetry bundle — nil unless spec.Telemetry enables a subsystem. The
// bundle is returned even when the run errors out on a stall or budget,
// so a hung configuration can be diagnosed from its partial trace. It
// shares Run's no-panic contract.
func RunTelemetry(spec RunSpec) (res Results, tel *Telemetry, err error) {
	phase := guard.PhaseValidate
	var sys *gpu.System
	defer func() {
		if r := recover(); r != nil {
			cycle := int64(-1)
			if sys != nil {
				cycle = sys.Now()
				tel = sys.Tel
			}
			res = Results{}
			err = guard.Recovered(r, spec.Hash(), phase, cycle)
		}
	}()
	if err := spec.Validate(); err != nil {
		return Results{}, nil, err
	}
	phase = guard.PhaseBuild
	b, err := workload.ByName(spec.Benchmark)
	if err != nil {
		return Results{}, nil, err
	}
	cfg := Config(spec)
	p := workload.DefaultParams()
	p.NumSMs = cfg.NumSMs
	p.WarpsPerSM = cfg.WarpsPerSM
	if spec.Scale > 0 {
		p.Scale = spec.Scale
	}
	if spec.Seed != 0 {
		p.Seed = spec.Seed
	}
	if cfg.Engine == gpu.EngineSampled {
		// Deterministic sampling: the per-window RNG streams key off the
		// spec's content hash, so identical sampled specs are
		// byte-identical to each other on any worker.
		cfg.Sampled.Key = spec.Hash()
	}
	sys, err = gpu.NewSystem(cfg, b.Build(p))
	if err != nil {
		return Results{}, nil, err
	}
	phase = guard.PhaseRun
	res, rerr := sys.Run()
	if rerr != nil {
		// %w keeps errors.As(*StallError) working under the context wrap.
		return res, sys.Tel, fmt.Errorf("dramlat: %s/%s: %w", spec.Benchmark, cfg.Scheduler, rerr)
	}
	return res, sys.Tel, nil
}

// MERBTable returns Table I for the default GDDR5 timings.
func MERBTable(maxBanks int) []int { return gddr5.Default().MERBTable(maxBanks) }

// Timing returns the Table II GDDR5 timing set.
func Timing() gddr5.Timing { return gddr5.Default() }

// PowerModel returns the GDDR5 power model used for the Section VI-B
// analysis.
func PowerModel() power.Model { return power.DefaultGDDR5() }

// EstimatePower evaluates the power model over a run's DRAM activity.
func EstimatePower(res Results) power.Breakdown {
	return PowerModel().Estimate(res.DRAM, res.Ticks, 6)
}
